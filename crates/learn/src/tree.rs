//! CART decision trees over quantile-binned features.
//!
//! Two flavours share the node machinery:
//!
//! * [`ClassificationTree`] — Gini-impurity splits, class-histogram leaves;
//!   the building block of the random forest;
//! * [`GradientTree`] — second-order (Newton) splits on per-row gradient /
//!   hessian pairs with L2 leaf regularization; the building block of the
//!   gradient-boosted classifier (the XGBoost/LightGBM formulation).
//!
//! Split search is histogram-based: per node, accumulate per-bin statistics
//! in `O(rows × features)` and scan bins in `O(bins × features)`.

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;

use crate::data::BinnedMatrix;

/// Hyper-parameters shared by both tree flavours.
#[derive(Debug, Clone, Copy)]
pub struct TreeConfig {
    /// Maximum depth (root = depth 0).
    pub max_depth: usize,
    /// Minimum rows in a leaf.
    pub min_samples_leaf: usize,
    /// Minimum impurity/gain improvement to split.
    pub min_gain: f64,
    /// Number of candidate features per split (`None` = all).
    pub features_per_split: Option<usize>,
    /// L2 regularization on gradient-tree leaf weights (ignored by
    /// classification trees).
    pub lambda: f64,
    /// Worker threads for per-feature split search (`0` = auto via
    /// `rv-par`, `1` = serial). Parallel and serial search pick
    /// bit-identical splits, so this only changes wall-clock time.
    pub n_threads: usize,
}

impl Default for TreeConfig {
    fn default() -> Self {
        Self {
            max_depth: 8,
            min_samples_leaf: 5,
            min_gain: 1e-7,
            features_per_split: None,
            lambda: 1.0,
            n_threads: 0,
        }
    }
}

/// Minimum `rows × candidate features` in a node before the split search
/// fans out across workers; smaller nodes search serially (thread spawn
/// would cost more than the scan). Depends only on data size, so the
/// serial/parallel decision is itself deterministic.
const PAR_SPLIT_MIN_WORK: usize = 1 << 16;

/// Resolved split-search worker request for a node: serial below the work
/// gate, the configured request otherwise.
fn split_threads(n_rows: usize, n_candidates: usize, config: &TreeConfig) -> usize {
    if n_rows.saturating_mul(n_candidates) < PAR_SPLIT_MIN_WORK {
        1
    } else {
        config.n_threads
    }
}

/// A binary tree node.
#[derive(Debug, Clone, PartialEq)]
enum Node {
    Split {
        feature: usize,
        /// Raw-value threshold: rows with `x[feature] <= threshold` go left.
        threshold: f64,
        left: usize,
        right: usize,
        /// Total Gini/gain improvement contributed by this split, weighted
        /// by the fraction of training rows that reached it (for feature
        /// importance).
        gain: f64,
    },
    /// Leaf payload: class probabilities (classification) or a single
    /// weight (gradient tree, stored as a 1-element vector).
    Leaf(Vec<f64>),
}

/// Storage shared by both tree flavours.
#[derive(Debug, Clone, PartialEq)]
pub struct Tree {
    nodes: Vec<Node>,
    n_features: usize,
}

impl Tree {
    /// Routes a raw feature row to its leaf payload.
    pub fn leaf_of(&self, x: &[f64]) -> &[f64] {
        assert_eq!(x.len(), self.n_features, "feature width mismatch");
        let mut i = 0usize;
        loop {
            match &self.nodes[i] {
                Node::Leaf(v) => return v,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                    ..
                } => {
                    i = if x[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    /// Number of nodes.
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Adds each split's gain to `importances[feature]` (Gini importance
    /// accumulation).
    pub fn accumulate_importance(&self, importances: &mut [f64]) {
        for n in &self.nodes {
            if let Node::Split { feature, gain, .. } = n {
                importances[*feature] += *gain;
            }
        }
    }

    /// Writes the tree as `tree,<n_features>,<n_nodes>` followed by one
    /// `split,...` or `leaf,...` record per node, in node-index order.
    /// Floats go through `Display` (shortest round trip), so
    /// [`Tree::read_text`] restores the exact bits.
    pub fn write_text<W: std::io::Write>(&self, w: &mut W) -> std::io::Result<()> {
        writeln!(w, "tree,{},{}", self.n_features, self.nodes.len())?;
        for n in &self.nodes {
            match n {
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                    gain,
                } => writeln!(w, "split,{feature},{threshold},{left},{right},{gain}")?,
                Node::Leaf(v) => {
                    write!(w, "leaf,{}", v.len())?;
                    crate::serialize::write_list(w, v)?;
                }
            }
        }
        Ok(())
    }

    /// Reads a tree written by [`Tree::write_text`].
    pub fn read_text<R: std::io::BufRead>(
        r: &mut crate::serialize::LineReader<R>,
    ) -> Result<Self, crate::serialize::SerializeError> {
        let header = r.expect_tag("tree")?;
        if header.len() != 2 {
            return Err(r.err("tree header needs n_features,n_nodes"));
        }
        let n_features: usize = r.parse("n_features", &header[0])?;
        let n_nodes: usize = r.parse("n_nodes", &header[1])?;
        let mut nodes = Vec::with_capacity(n_nodes);
        for _ in 0..n_nodes {
            let (tag, fields) = r.next_record()?;
            let node = match tag.as_str() {
                "split" => {
                    if fields.len() != 5 {
                        return Err(r.err("split record needs 5 fields"));
                    }
                    let left: usize = r.parse("left child", &fields[2])?;
                    let right: usize = r.parse("right child", &fields[3])?;
                    if left >= n_nodes || right >= n_nodes {
                        return Err(r.err("split child index out of range"));
                    }
                    Node::Split {
                        feature: r.parse("split feature", &fields[0])?,
                        threshold: r.parse("split threshold", &fields[1])?,
                        left,
                        right,
                        gain: r.parse("split gain", &fields[4])?,
                    }
                }
                "leaf" => {
                    let n: usize = r.parse(
                        "leaf payload length",
                        fields.first().map(String::as_str).unwrap_or(""),
                    )?;
                    Node::Leaf(r.parse_list_n("leaf payload", &fields[1..], n)?)
                }
                other => return Err(r.err(format!("expected split/leaf, found `{other}`"))),
            };
            nodes.push(node);
        }
        Ok(Self { nodes, n_features })
    }
}

// ---------------------------------------------------------------------------
// Classification tree
// ---------------------------------------------------------------------------

/// A Gini classification tree; leaves hold class-probability vectors.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassificationTree {
    tree: Tree,
    n_classes: usize,
}

impl ClassificationTree {
    /// Fits a tree on the rows listed in `rows` (indices into `binned`).
    ///
    /// `raw` is needed only for its width sanity; training uses the codes.
    pub fn fit(
        binned: &BinnedMatrix,
        y: &[usize],
        n_classes: usize,
        rows: &[usize],
        config: &TreeConfig,
        rng: &mut SmallRng,
    ) -> Self {
        assert!(n_classes >= 2, "need at least two classes");
        assert!(!rows.is_empty(), "need at least one training row");
        let mut nodes = Vec::new();
        let total = rows.len() as f64;
        build_classification(
            binned, y, n_classes, rows, config, rng, 0, &mut nodes, total,
        );
        Self {
            tree: Tree {
                nodes,
                n_features: binned.n_features(),
            },
            n_classes,
        }
    }

    /// Class-probability vector for a raw feature row.
    pub fn predict_proba(&self, x: &[f64]) -> Vec<f64> {
        self.tree.leaf_of(x).to_vec()
    }

    /// Most probable class.
    pub fn predict(&self, x: &[f64]) -> usize {
        argmax(self.tree.leaf_of(x))
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// The underlying node storage (for importances).
    pub fn tree(&self) -> &Tree {
        &self.tree
    }

    /// Writes as `ctree,<n_classes>` followed by the node block.
    pub fn write_text<W: std::io::Write>(&self, w: &mut W) -> std::io::Result<()> {
        writeln!(w, "ctree,{}", self.n_classes)?;
        self.tree.write_text(w)
    }

    /// Reads a tree written by [`ClassificationTree::write_text`].
    pub fn read_text<R: std::io::BufRead>(
        r: &mut crate::serialize::LineReader<R>,
    ) -> Result<Self, crate::serialize::SerializeError> {
        let header = r.expect_tag("ctree")?;
        if header.len() != 1 {
            return Err(r.err("ctree header needs n_classes"));
        }
        Ok(Self {
            n_classes: r.parse("n_classes", &header[0])?,
            tree: Tree::read_text(r)?,
        })
    }
}

fn gini(counts: &[f64], total: f64) -> f64 {
    if total <= 0.0 {
        return 0.0;
    }
    1.0 - counts
        .iter()
        .map(|&c| (c / total) * (c / total))
        .sum::<f64>()
}

#[allow(clippy::too_many_arguments)]
fn build_classification(
    binned: &BinnedMatrix,
    y: &[usize],
    n_classes: usize,
    rows: &[usize],
    config: &TreeConfig,
    rng: &mut SmallRng,
    depth: usize,
    nodes: &mut Vec<Node>,
    total_rows: f64,
) -> usize {
    let mut counts = vec![0.0f64; n_classes];
    for &r in rows {
        counts[y[r]] += 1.0;
    }
    let n = rows.len() as f64;
    let node_gini = gini(&counts, n);

    let make_leaf = |counts: &[f64], nodes: &mut Vec<Node>| -> usize {
        let probs: Vec<f64> = counts.iter().map(|&c| c / n).collect();
        nodes.push(Node::Leaf(probs));
        nodes.len() - 1
    };

    if depth >= config.max_depth || rows.len() < 2 * config.min_samples_leaf || node_gini <= 1e-12 {
        return make_leaf(&counts, nodes);
    }

    // Candidate features.
    let candidates = candidate_features(binned.n_features(), config.features_per_split, rng);

    // Best split search over per-bin class histograms. Features are
    // independent (each scans its own histogram), so candidates fan out
    // across workers; the strict-`>` reduction below consumes the
    // index-ordered results exactly like the serial loop would.
    let threads = split_threads(rows.len(), candidates.len(), config);
    let per_feature = rv_par::par_map(candidates.len(), threads, |ci| {
        best_classification_split(
            binned,
            y,
            n_classes,
            rows,
            config,
            &counts,
            node_gini,
            candidates[ci],
        )
    });
    let mut best: Option<(usize, u8, f64)> = None; // (feature, bin, gain)
    for (&f, cand) in candidates.iter().zip(&per_feature) {
        if let Some((bin, gain)) = *cand {
            if best.map_or(true, |(_, _, bg)| gain > bg) {
                best = Some((f, bin, gain));
            }
        }
    }

    let Some((feature, bin, gain)) = best else {
        return make_leaf(&counts, nodes);
    };

    let (left_rows, right_rows): (Vec<usize>, Vec<usize>) =
        rows.iter().partition(|&&r| binned.code(feature, r) <= bin);

    let idx = nodes.len();
    nodes.push(Node::Leaf(Vec::new())); // placeholder
    let left = build_classification(
        binned,
        y,
        n_classes,
        &left_rows,
        config,
        rng,
        depth + 1,
        nodes,
        total_rows,
    );
    let right = build_classification(
        binned,
        y,
        n_classes,
        &right_rows,
        config,
        rng,
        depth + 1,
        nodes,
        total_rows,
    );
    nodes[idx] = Node::Split {
        feature,
        threshold: binned.threshold(feature, bin),
        left,
        right,
        gain: gain * n / total_rows,
    };
    idx
}

/// Best `(bin, gain)` split of `rows` on feature `f`, or `None` when no
/// bin clears the leaf-size and minimum-gain constraints. Pure in its
/// inputs, so features can be searched in any order or concurrently.
#[allow(clippy::too_many_arguments)]
fn best_classification_split(
    binned: &BinnedMatrix,
    y: &[usize],
    n_classes: usize,
    rows: &[usize],
    config: &TreeConfig,
    counts: &[f64],
    node_gini: f64,
    f: usize,
) -> Option<(u8, f64)> {
    let n_bins = binned.n_bins(f);
    if n_bins < 2 {
        return None;
    }
    let n = rows.len() as f64;
    let mut hist = vec![0.0f64; n_bins * n_classes];
    for &r in rows {
        let b = binned.code(f, r) as usize;
        hist[b * n_classes + y[r]] += 1.0;
    }
    // Prefix scan over bins.
    let mut best: Option<(u8, f64)> = None;
    let mut left = vec![0.0f64; n_classes];
    for b in 0..n_bins - 1 {
        for c in 0..n_classes {
            left[c] += hist[b * n_classes + c];
        }
        let left_n: f64 = left.iter().sum();
        let right_n = n - left_n;
        if left_n < config.min_samples_leaf as f64 || right_n < config.min_samples_leaf as f64 {
            continue;
        }
        let right: Vec<f64> = (0..n_classes).map(|c| counts[c] - left[c]).collect();
        let child_gini = (left_n / n) * gini(&left, left_n) + (right_n / n) * gini(&right, right_n);
        let gain = node_gini - child_gini;
        if gain > config.min_gain && best.map_or(true, |(_, bg)| gain > bg) {
            best = Some((b as u8, gain));
        }
    }
    best
}

// ---------------------------------------------------------------------------
// Gradient tree (for boosting)
// ---------------------------------------------------------------------------

/// A second-order gradient tree: fits `-G/(H + λ)` leaf weights on
/// per-row (gradient, hessian) pairs.
#[derive(Debug, Clone, PartialEq)]
pub struct GradientTree {
    tree: Tree,
}

impl GradientTree {
    /// Fits a gradient tree on the rows listed in `rows`.
    pub fn fit(
        binned: &BinnedMatrix,
        grad: &[f64],
        hess: &[f64],
        rows: &[usize],
        config: &TreeConfig,
        rng: &mut SmallRng,
    ) -> Self {
        assert_eq!(grad.len(), hess.len(), "grad/hess length mismatch");
        assert!(!rows.is_empty(), "need at least one training row");
        let mut nodes = Vec::new();
        let total = rows.len() as f64;
        build_gradient(binned, grad, hess, rows, config, rng, 0, &mut nodes, total);
        Self {
            tree: Tree {
                nodes,
                n_features: binned.n_features(),
            },
        }
    }

    /// Leaf weight for a raw feature row.
    pub fn predict(&self, x: &[f64]) -> f64 {
        self.tree.leaf_of(x)[0]
    }

    /// The underlying node storage (for importances).
    pub fn tree(&self) -> &Tree {
        &self.tree
    }

    /// Writes as `gtree` followed by the node block.
    pub fn write_text<W: std::io::Write>(&self, w: &mut W) -> std::io::Result<()> {
        writeln!(w, "gtree")?;
        self.tree.write_text(w)
    }

    /// Reads a tree written by [`GradientTree::write_text`].
    pub fn read_text<R: std::io::BufRead>(
        r: &mut crate::serialize::LineReader<R>,
    ) -> Result<Self, crate::serialize::SerializeError> {
        r.expect_tag("gtree")?;
        Ok(Self {
            tree: Tree::read_text(r)?,
        })
    }
}

#[inline]
fn leaf_objective(g: f64, h: f64, lambda: f64) -> f64 {
    g * g / (h + lambda)
}

#[allow(clippy::too_many_arguments)]
fn build_gradient(
    binned: &BinnedMatrix,
    grad: &[f64],
    hess: &[f64],
    rows: &[usize],
    config: &TreeConfig,
    rng: &mut SmallRng,
    depth: usize,
    nodes: &mut Vec<Node>,
    total_rows: f64,
) -> usize {
    let (mut g_sum, mut h_sum) = (0.0f64, 0.0f64);
    for &r in rows {
        g_sum += grad[r];
        h_sum += hess[r];
    }

    let make_leaf = |nodes: &mut Vec<Node>| -> usize {
        let w = -g_sum / (h_sum + config.lambda);
        nodes.push(Node::Leaf(vec![w]));
        nodes.len() - 1
    };

    if depth >= config.max_depth || rows.len() < 2 * config.min_samples_leaf {
        return make_leaf(nodes);
    }

    let parent_obj = leaf_objective(g_sum, h_sum, config.lambda);
    let candidates = candidate_features(binned.n_features(), config.features_per_split, rng);

    // Same fan-out/reduce structure as the classification search: one
    // independent task per candidate feature, strict-`>` reduction in
    // candidate order.
    let threads = split_threads(rows.len(), candidates.len(), config);
    let per_feature = rv_par::par_map(candidates.len(), threads, |ci| {
        best_gradient_split(
            binned,
            grad,
            hess,
            rows,
            config,
            g_sum,
            h_sum,
            parent_obj,
            candidates[ci],
        )
    });
    let mut best: Option<(usize, u8, f64)> = None;
    for (&f, cand) in candidates.iter().zip(&per_feature) {
        if let Some((bin, gain)) = *cand {
            if best.map_or(true, |(_, _, bg)| gain > bg) {
                best = Some((f, bin, gain));
            }
        }
    }

    let Some((feature, bin, gain)) = best else {
        return make_leaf(nodes);
    };
    let (left_rows, right_rows): (Vec<usize>, Vec<usize>) =
        rows.iter().partition(|&&r| binned.code(feature, r) <= bin);

    let idx = nodes.len();
    nodes.push(Node::Leaf(Vec::new()));
    let left = build_gradient(
        binned,
        grad,
        hess,
        &left_rows,
        config,
        rng,
        depth + 1,
        nodes,
        total_rows,
    );
    let right = build_gradient(
        binned,
        grad,
        hess,
        &right_rows,
        config,
        rng,
        depth + 1,
        nodes,
        total_rows,
    );
    nodes[idx] = Node::Split {
        feature,
        threshold: binned.threshold(feature, bin),
        left,
        right,
        gain: gain * rows.len() as f64 / total_rows,
    };
    idx
}

/// Best `(bin, gain)` split of `rows` on feature `f` for the gradient
/// tree, or `None` when no bin clears the constraints.
#[allow(clippy::too_many_arguments)]
fn best_gradient_split(
    binned: &BinnedMatrix,
    grad: &[f64],
    hess: &[f64],
    rows: &[usize],
    config: &TreeConfig,
    g_sum: f64,
    h_sum: f64,
    parent_obj: f64,
    f: usize,
) -> Option<(u8, f64)> {
    let n_bins = binned.n_bins(f);
    if n_bins < 2 {
        return None;
    }
    let mut hist_g = vec![0.0f64; n_bins];
    let mut hist_h = vec![0.0f64; n_bins];
    let mut hist_n = vec![0u32; n_bins];
    for &r in rows {
        let b = binned.code(f, r) as usize;
        hist_g[b] += grad[r];
        hist_h[b] += hess[r];
        hist_n[b] += 1;
    }
    let mut best: Option<(u8, f64)> = None;
    let (mut gl, mut hl, mut nl) = (0.0f64, 0.0f64, 0u32);
    for b in 0..n_bins - 1 {
        gl += hist_g[b];
        hl += hist_h[b];
        nl += hist_n[b];
        let nr = rows.len() as u32 - nl;
        if (nl as usize) < config.min_samples_leaf || (nr as usize) < config.min_samples_leaf {
            continue;
        }
        let gain = 0.5
            * (leaf_objective(gl, hl, config.lambda)
                + leaf_objective(g_sum - gl, h_sum - hl, config.lambda)
                - parent_obj);
        if gain > config.min_gain && best.map_or(true, |(_, bg)| gain > bg) {
            best = Some((b as u8, gain));
        }
    }
    best
}

fn candidate_features(
    n_features: usize,
    features_per_split: Option<usize>,
    rng: &mut SmallRng,
) -> Vec<usize> {
    match features_per_split {
        None => (0..n_features).collect(),
        Some(m) => {
            let mut all: Vec<usize> = (0..n_features).collect();
            all.shuffle(rng);
            all.truncate(m.clamp(1, n_features));
            all
        }
    }
}

pub(crate) fn argmax(v: &[f64]) -> usize {
    // `total_cmp` keeps the comparison total under NaN scores (a NaN ranks
    // highest and wins the argmax) instead of panicking mid-prediction.
    v.iter()
        .enumerate()
        .max_by(|(_, a), (_, b)| a.total_cmp(b))
        .map(|(i, _)| i)
        .expect("non-empty")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(1)
    }

    /// y = x0 > 5 (clean threshold task).
    fn threshold_task() -> (Vec<Vec<f64>>, Vec<usize>) {
        let x: Vec<Vec<f64>> = (0..200)
            .map(|i| vec![(i % 11) as f64, (i % 7) as f64])
            .collect();
        let y: Vec<usize> = x.iter().map(|r| usize::from(r[0] > 5.0)).collect();
        (x, y)
    }

    #[test]
    fn classification_tree_learns_threshold() {
        let (x, y) = threshold_task();
        let binned = BinnedMatrix::from_rows(&x, 32);
        let rows: Vec<usize> = (0..x.len()).collect();
        let t = ClassificationTree::fit(&binned, &y, 2, &rows, &TreeConfig::default(), &mut rng());
        let correct = x
            .iter()
            .zip(&y)
            .filter(|(xi, &yi)| t.predict(xi) == yi)
            .count();
        assert_eq!(correct, x.len(), "tree should separate a clean threshold");
    }

    #[test]
    fn proba_sums_to_one() {
        let (x, y) = threshold_task();
        let binned = BinnedMatrix::from_rows(&x, 32);
        let rows: Vec<usize> = (0..x.len()).collect();
        let t = ClassificationTree::fit(&binned, &y, 2, &rows, &TreeConfig::default(), &mut rng());
        for xi in x.iter().take(20) {
            let p = t.predict_proba(xi);
            assert_eq!(p.len(), 2);
            assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn depth_zero_gives_prior() {
        let (x, y) = threshold_task();
        let binned = BinnedMatrix::from_rows(&x, 32);
        let rows: Vec<usize> = (0..x.len()).collect();
        let cfg = TreeConfig {
            max_depth: 0,
            ..Default::default()
        };
        let t = ClassificationTree::fit(&binned, &y, 2, &rows, &cfg, &mut rng());
        assert_eq!(t.tree().n_nodes(), 1);
        let p = t.predict_proba(&x[0]);
        let pos = y.iter().filter(|&&v| v == 1).count() as f64 / y.len() as f64;
        assert!((p[1] - pos).abs() < 1e-9);
    }

    #[test]
    fn min_samples_leaf_respected() {
        let (x, y) = threshold_task();
        let binned = BinnedMatrix::from_rows(&x, 32);
        let rows: Vec<usize> = (0..x.len()).collect();
        let cfg = TreeConfig {
            min_samples_leaf: 90,
            ..Default::default()
        };
        let t = ClassificationTree::fit(&binned, &y, 2, &rows, &cfg, &mut rng());
        // With huge leaves only the single root split (109 vs 91) is legal.
        assert!(t.tree().n_nodes() <= 3);
    }

    #[test]
    fn gradient_tree_fits_residuals() {
        // Target: y = 3 if x0 <= 4 else -2. With squared loss, grad = -y
        // (starting from 0 prediction), hess = 1 → leaves recover means.
        let x: Vec<Vec<f64>> = (0..100).map(|i| vec![(i % 10) as f64]).collect();
        let target: Vec<f64> = x
            .iter()
            .map(|r| if r[0] <= 4.0 { 3.0 } else { -2.0 })
            .collect();
        let grad: Vec<f64> = target.iter().map(|t| -t).collect();
        let hess = vec![1.0; x.len()];
        let binned = BinnedMatrix::from_rows(&x, 16);
        let rows: Vec<usize> = (0..x.len()).collect();
        let cfg = TreeConfig {
            lambda: 0.0,
            ..Default::default()
        };
        let t = GradientTree::fit(&binned, &grad, &hess, &rows, &cfg, &mut rng());
        for (xi, ti) in x.iter().zip(&target) {
            assert!((t.predict(xi) - ti).abs() < 1e-6, "x={:?}", xi);
        }
    }

    #[test]
    fn lambda_shrinks_leaves() {
        let x: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64]).collect();
        let grad = vec![-1.0; 10];
        let hess = vec![1.0; 10];
        let binned = BinnedMatrix::from_rows(&x, 8);
        let rows: Vec<usize> = (0..10).collect();
        let fit = |lambda: f64| {
            let cfg = TreeConfig {
                max_depth: 0,
                lambda,
                ..Default::default()
            };
            GradientTree::fit(&binned, &grad, &hess, &rows, &cfg, &mut rng()).predict(&x[0])
        };
        assert!((fit(0.0) - 1.0).abs() < 1e-9);
        assert!(fit(10.0) < fit(0.0));
    }

    #[test]
    fn importance_accumulates_on_informative_feature() {
        let (x, y) = threshold_task();
        let binned = BinnedMatrix::from_rows(&x, 32);
        let rows: Vec<usize> = (0..x.len()).collect();
        let t = ClassificationTree::fit(&binned, &y, 2, &rows, &TreeConfig::default(), &mut rng());
        let mut imp = vec![0.0; 2];
        t.tree().accumulate_importance(&mut imp);
        assert!(imp[0] > 0.0, "informative feature should gain importance");
        assert!(imp[0] > imp[1]);
    }

    /// A task wide/tall enough that `rows × candidates` clears
    /// [`PAR_SPLIT_MIN_WORK`] at the root, so the parallel path actually
    /// runs.
    fn wide_task() -> (Vec<Vec<f64>>, Vec<usize>) {
        let n_features = 50;
        let x: Vec<Vec<f64>> = (0..1500)
            .map(|i| {
                (0..n_features)
                    .map(|f| ((i * (f + 3) + f * f) % 23) as f64)
                    .collect()
            })
            .collect();
        let y: Vec<usize> = x.iter().map(|r| usize::from(r[0] > 11.0)).collect();
        (x, y)
    }

    #[test]
    fn parallel_split_search_matches_serial_classification() {
        let (x, y) = wide_task();
        assert!(x.len() * x[0].len() >= PAR_SPLIT_MIN_WORK);
        let binned = BinnedMatrix::from_rows(&x, 32);
        let rows: Vec<usize> = (0..x.len()).collect();
        let fit = |n_threads: usize| {
            let cfg = TreeConfig {
                n_threads,
                ..Default::default()
            };
            ClassificationTree::fit(&binned, &y, 2, &rows, &cfg, &mut rng())
        };
        let serial = fit(1);
        let parallel = fit(4);
        assert_eq!(serial.tree().n_nodes(), parallel.tree().n_nodes());
        for xi in x.iter().take(100) {
            assert_eq!(serial.predict_proba(xi), parallel.predict_proba(xi));
        }
    }

    #[test]
    fn parallel_split_search_matches_serial_gradient() {
        let (x, y) = wide_task();
        let grad: Vec<f64> = y.iter().map(|&v| if v == 1 { -1.0 } else { 1.0 }).collect();
        let hess = vec![1.0; x.len()];
        let binned = BinnedMatrix::from_rows(&x, 32);
        let rows: Vec<usize> = (0..x.len()).collect();
        let fit = |n_threads: usize| {
            let cfg = TreeConfig {
                n_threads,
                ..Default::default()
            };
            GradientTree::fit(&binned, &grad, &hess, &rows, &cfg, &mut rng())
        };
        let serial = fit(1);
        let parallel = fit(4);
        assert_eq!(serial.tree().n_nodes(), parallel.tree().n_nodes());
        for xi in x.iter().take(100) {
            assert_eq!(serial.predict(xi).to_bits(), parallel.predict(xi).to_bits());
        }
    }

    #[test]
    fn argmax_tolerates_nan_scores() {
        // A NaN score must not panic the prediction path; under total
        // ordering NaN ranks above every finite value.
        assert_eq!(argmax(&[0.1, f64::NAN, 0.9]), 1);
        assert_eq!(argmax(&[0.2, 0.7, 0.1]), 1);
    }

    #[test]
    fn feature_subsampling_limits_candidates() {
        // With only the uninformative feature available the tree can still
        // split, but determinism of the rng keeps this reproducible.
        let (x, y) = threshold_task();
        let binned = BinnedMatrix::from_rows(&x, 32);
        let rows: Vec<usize> = (0..x.len()).collect();
        let cfg = TreeConfig {
            features_per_split: Some(1),
            ..Default::default()
        };
        let a = ClassificationTree::fit(&binned, &y, 2, &rows, &cfg, &mut rng());
        let b = ClassificationTree::fit(&binned, &y, 2, &rows, &cfg, &mut rng());
        assert_eq!(a.tree().n_nodes(), b.tree().n_nodes());
    }
}
