//! Hyper-parameter sweeps (§5.2 step (2): "parameter sweeping to select the
//! best hyper-parameters").

use crate::data::{train_test_split, TabularData};
use crate::gbdt::{GbdtClassifier, GbdtConfig};
use crate::metrics::accuracy;
use crate::Classifier;

/// Result of a grid sweep.
#[derive(Debug, Clone)]
pub struct SweepResult {
    /// Winning configuration.
    pub best: GbdtConfig,
    /// Validation accuracy of the winner.
    pub best_accuracy: f64,
    /// `(n_rounds, max_depth, learning_rate, accuracy)` for every candidate.
    pub trials: Vec<(usize, usize, f64, f64)>,
}

/// Grid-sweeps GBDT hyper-parameters on a held-out validation split of
/// `data` and returns the winner (ties go to the earlier candidate).
pub fn sweep_gbdt(
    data: &TabularData,
    rounds: &[usize],
    depths: &[usize],
    learning_rates: &[f64],
    seed: u64,
) -> SweepResult {
    assert!(
        !rounds.is_empty() && !depths.is_empty() && !learning_rates.is_empty(),
        "grid must be non-empty"
    );
    let n_classes = data.n_classes();
    let (train, valid) = train_test_split(data, 0.25, seed);
    assert!(!valid.is_empty(), "validation split is empty");

    let mut best: Option<(GbdtConfig, f64)> = None;
    let mut trials = Vec::new();
    for &r in rounds {
        for &d in depths {
            for &lr in learning_rates {
                let config = GbdtConfig {
                    n_rounds: r,
                    learning_rate: lr,
                    tree: crate::tree::TreeConfig {
                        max_depth: d,
                        ..GbdtConfig::default().tree
                    },
                    seed,
                    ..Default::default()
                };
                let model = GbdtClassifier::fit(&train.x, &train.y, n_classes, &config);
                let preds = model.predict_batch(&valid.x);
                let acc = accuracy(&valid.y, &preds);
                trials.push((r, d, lr, acc));
                if best.as_ref().map_or(true, |(_, b)| acc > *b) {
                    best = Some((config, acc));
                }
            }
        }
    }
    let (best, best_accuracy) = best.expect("non-empty grid");
    SweepResult {
        best,
        best_accuracy,
        trials,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn task() -> TabularData {
        let x: Vec<Vec<f64>> = (0..300)
            .map(|i| vec![(i % 15) as f64, ((i * 7) % 11) as f64])
            .collect();
        let y: Vec<usize> = x.iter().map(|r| usize::from(r[0] > 7.0)).collect();
        TabularData::new(x, y)
    }

    #[test]
    fn sweep_explores_full_grid() {
        let r = sweep_gbdt(&task(), &[5, 10], &[2, 4], &[0.1, 0.3], 1);
        assert_eq!(r.trials.len(), 8);
        assert!(r.best_accuracy > 0.9, "best {}", r.best_accuracy);
        assert!(r.trials.iter().any(|&(rr, d, lr, _)| rr == r.best.n_rounds
            && d == r.best.tree.max_depth
            && lr == r.best.learning_rate));
    }

    #[test]
    fn best_is_max_of_trials() {
        let r = sweep_gbdt(&task(), &[3, 8], &[3], &[0.2], 2);
        let max = r.trials.iter().map(|t| t.3).fold(f64::MIN, f64::max);
        assert!((r.best_accuracy - max).abs() < 1e-12);
    }

    #[test]
    fn deterministic() {
        let a = sweep_gbdt(&task(), &[5], &[3], &[0.2], 9);
        let b = sweep_gbdt(&task(), &[5], &[3], &[0.2], 9);
        assert_eq!(a.best_accuracy, b.best_accuracy);
    }

    #[test]
    #[should_panic(expected = "grid must be non-empty")]
    fn empty_grid_panics() {
        sweep_gbdt(&task(), &[], &[3], &[0.1], 1);
    }
}
