//! Gaussian naive Bayes — one of the §5.2 ensemble members.

use crate::Classifier;

/// Gaussian naive Bayes classifier: per-class, per-feature normal likelihoods
/// with a variance floor for numeric stability.
#[derive(Debug, Clone, PartialEq)]
pub struct GaussianNb {
    /// `log_prior[c]`.
    log_prior: Vec<f64>,
    /// `mean[c][f]`.
    mean: Vec<Vec<f64>>,
    /// `var[c][f]` (floored).
    var: Vec<Vec<f64>>,
    n_classes: usize,
}

impl GaussianNb {
    /// Fits on row-major features `x` and labels `y` (dense `0..n_classes`).
    pub fn fit(x: &[Vec<f64>], y: &[usize], n_classes: usize) -> Self {
        assert_eq!(x.len(), y.len(), "row/label count mismatch");
        assert!(!x.is_empty(), "need training data");
        assert!(n_classes >= 2, "need at least two classes");
        let d = x[0].len();
        let mut count = vec![0usize; n_classes];
        let mut mean = vec![vec![0.0f64; d]; n_classes];
        for (xi, &c) in x.iter().zip(y) {
            count[c] += 1;
            for (m, &v) in mean[c].iter_mut().zip(xi) {
                *m += v;
            }
        }
        for c in 0..n_classes {
            let n = count[c].max(1) as f64;
            for m in &mut mean[c] {
                *m /= n;
            }
        }
        let mut var = vec![vec![0.0f64; d]; n_classes];
        for (xi, &c) in x.iter().zip(y) {
            for f in 0..d {
                let dv = xi[f] - mean[c][f];
                var[c][f] += dv * dv;
            }
        }
        // Global variance scale for the floor, as scikit-learn does.
        let global_var: f64 = {
            let gm: Vec<f64> = (0..d)
                .map(|f| x.iter().map(|r| r[f]).sum::<f64>() / x.len() as f64)
                .collect();
            (0..d)
                .map(|f| x.iter().map(|r| (r[f] - gm[f]).powi(2)).sum::<f64>() / x.len() as f64)
                .sum::<f64>()
                / d as f64
        };
        let floor = (1e-9 * global_var).max(1e-12);
        for c in 0..n_classes {
            let n = count[c].max(1) as f64;
            for v in &mut var[c] {
                *v = (*v / n).max(floor);
            }
        }
        let total = x.len() as f64;
        let log_prior: Vec<f64> = count
            .iter()
            .map(|&c| ((c.max(1)) as f64 / total).ln())
            .collect();
        Self {
            log_prior,
            mean,
            var,
            n_classes,
        }
    }

    /// Writes as an `nb` header, a `prior` line, then per-class `mean` and
    /// `var` lines.
    pub fn write_text<W: std::io::Write>(&self, w: &mut W) -> std::io::Result<()> {
        let d = self.mean.first().map(Vec::len).unwrap_or(0);
        writeln!(w, "nb,{},{d}", self.n_classes)?;
        write!(w, "prior")?;
        crate::serialize::write_list(w, &self.log_prior)?;
        for c in 0..self.n_classes {
            write!(w, "mean")?;
            crate::serialize::write_list(w, &self.mean[c])?;
            write!(w, "var")?;
            crate::serialize::write_list(w, &self.var[c])?;
        }
        Ok(())
    }

    /// Reads a model written by [`GaussianNb::write_text`].
    pub fn read_text<R: std::io::BufRead>(
        r: &mut crate::serialize::LineReader<R>,
    ) -> Result<Self, crate::serialize::SerializeError> {
        let header = r.expect_tag("nb")?;
        if header.len() != 2 {
            return Err(r.err("nb header needs n_classes,n_features"));
        }
        let n_classes: usize = r.parse("n_classes", &header[0])?;
        let d: usize = r.parse("n_features", &header[1])?;
        let prior_fields = r.expect_tag("prior")?;
        let log_prior = r.parse_list_n("log prior", &prior_fields, n_classes)?;
        let mut mean = Vec::with_capacity(n_classes);
        let mut var = Vec::with_capacity(n_classes);
        for _ in 0..n_classes {
            let m = r.expect_tag("mean")?;
            mean.push(r.parse_list_n("class mean", &m, d)?);
            let v = r.expect_tag("var")?;
            var.push(r.parse_list_n("class variance", &v, d)?);
        }
        Ok(Self {
            log_prior,
            mean,
            var,
            n_classes,
        })
    }
}

impl Classifier for GaussianNb {
    fn n_classes(&self) -> usize {
        self.n_classes
    }

    fn predict_proba(&self, x: &[f64]) -> Vec<f64> {
        let mut log_p: Vec<f64> = (0..self.n_classes)
            .map(|c| {
                let mut lp = self.log_prior[c];
                for (f, &v) in x.iter().enumerate() {
                    let var = self.var[c][f];
                    let dv = v - self.mean[c][f];
                    lp += -0.5 * ((2.0 * std::f64::consts::PI * var).ln() + dv * dv / var);
                }
                lp
            })
            .collect();
        let max = log_p.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let mut sum = 0.0;
        for lp in &mut log_p {
            *lp = (*lp - max).exp();
            sum += *lp;
        }
        for lp in &mut log_p {
            *lp /= sum;
        }
        log_p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gaussian_task() -> (Vec<Vec<f64>>, Vec<usize>) {
        // Two well-separated Gaussians on feature 0.
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..100 {
            let jitter = (i % 10) as f64 * 0.1;
            x.push(vec![0.0 + jitter, 5.0]);
            y.push(0);
            x.push(vec![10.0 + jitter, 5.0]);
            y.push(1);
        }
        (x, y)
    }

    #[test]
    fn separates_gaussians() {
        let (x, y) = gaussian_task();
        let m = GaussianNb::fit(&x, &y, 2);
        let acc = x
            .iter()
            .zip(&y)
            .filter(|(xi, &yi)| m.predict(xi) == yi)
            .count() as f64
            / x.len() as f64;
        assert!(acc > 0.99, "accuracy {acc}");
    }

    #[test]
    fn proba_valid_even_far_from_data() {
        let (x, y) = gaussian_task();
        let m = GaussianNb::fit(&x, &y, 2);
        for probe in [vec![-100.0, 5.0], vec![100.0, 5.0], vec![5.0, 5.0]] {
            let p = m.predict_proba(&probe);
            assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            assert!(p.iter().all(|&v| v.is_finite() && v >= 0.0));
        }
    }

    #[test]
    fn constant_feature_does_not_blow_up() {
        // Feature 1 is constant: variance floor must keep densities finite.
        let (x, y) = gaussian_task();
        let m = GaussianNb::fit(&x, &y, 2);
        let p = m.predict_proba(&[0.5, 5.0]);
        assert!(p.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn respects_prior_with_uninformative_features() {
        // 80/20 class balance, single constant feature → prior prediction.
        let x = vec![vec![1.0]; 100];
        let mut y = vec![0usize; 80];
        y.extend(vec![1usize; 20]);
        let m = GaussianNb::fit(&x, &y, 2);
        let p = m.predict_proba(&[1.0]);
        assert!((p[0] - 0.8).abs() < 0.05, "prior {p:?}");
    }
}
