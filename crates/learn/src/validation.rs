//! Model validation: per-class rates, probability calibration, and k-fold
//! cross-validation.

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::metrics::ConfusionMatrix;

/// Per-class precision/recall/F1 derived from a confusion matrix.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClassReport {
    /// `TP / (TP + FP)` — of the rows predicted as this class, how many were.
    pub precision: f64,
    /// `TP / (TP + FN)` — of the rows of this class, how many were found.
    pub recall: f64,
    /// Harmonic mean of precision and recall.
    pub f1: f64,
    /// Rows whose true class this is.
    pub support: u64,
}

/// Computes per-class precision/recall/F1 from a confusion matrix. Classes
/// with no predictions get precision 0; classes with no support get recall
/// and F1 of 0.
pub fn classification_report(matrix: &ConfusionMatrix) -> Vec<ClassReport> {
    let counts = matrix.counts();
    let k = matrix.n_classes();
    (0..k)
        .map(|c| {
            let tp = counts[c][c] as f64;
            let support: u64 = counts[c].iter().sum();
            let predicted: u64 = (0..k).map(|r| counts[r][c]).sum();
            let precision = if predicted == 0 {
                0.0
            } else {
                tp / predicted as f64
            };
            let recall = if support == 0 {
                0.0
            } else {
                tp / support as f64
            };
            let f1 = if precision + recall == 0.0 {
                0.0
            } else {
                2.0 * precision * recall / (precision + recall)
            };
            ClassReport {
                precision,
                recall,
                f1,
                support,
            }
        })
        .collect()
}

/// Macro-averaged F1 (unweighted mean over classes with support).
pub fn macro_f1(matrix: &ConfusionMatrix) -> f64 {
    let reports = classification_report(matrix);
    let with_support: Vec<&ClassReport> = reports.iter().filter(|r| r.support > 0).collect();
    if with_support.is_empty() {
        return 0.0;
    }
    with_support.iter().map(|r| r.f1).sum::<f64>() / with_support.len() as f64
}

/// Multiclass Brier score: mean squared error between the predicted
/// probability vector and the one-hot truth. 0 is perfect; lower is better.
///
/// # Panics
/// Panics on length mismatch, empty input, or out-of-range labels.
pub fn brier_score(truth: &[usize], probabilities: &[Vec<f64>]) -> f64 {
    assert_eq!(truth.len(), probabilities.len(), "length mismatch");
    assert!(!truth.is_empty(), "need at least one prediction");
    let k = probabilities[0].len();
    let mut total = 0.0;
    for (&t, p) in truth.iter().zip(probabilities) {
        assert!(t < k, "label out of range");
        assert_eq!(p.len(), k, "ragged probability rows");
        for (c, &pc) in p.iter().enumerate() {
            let y = if c == t { 1.0 } else { 0.0 };
            total += (pc - y) * (pc - y);
        }
    }
    total / truth.len() as f64
}

/// Deterministic k-fold index split: returns `k` disjoint validation folds
/// covering `0..n`.
///
/// # Panics
/// Panics if `k < 2` or `k > n`.
pub fn kfold_indices(n: usize, k: usize, seed: u64) -> Vec<Vec<usize>> {
    assert!(k >= 2, "need at least 2 folds");
    assert!(k <= n, "more folds than rows");
    let mut idx: Vec<usize> = (0..n).collect();
    idx.shuffle(&mut SmallRng::seed_from_u64(seed));
    let mut folds: Vec<Vec<usize>> = vec![Vec::new(); k];
    for (i, &row) in idx.iter().enumerate() {
        folds[i % k].push(row);
    }
    folds
}

/// Runs k-fold cross-validation: `fit_score(train_rows, valid_rows)` is
/// called per fold and must return that fold's score; the mean is returned.
pub fn cross_validate<F>(n: usize, k: usize, seed: u64, mut fit_score: F) -> f64
where
    F: FnMut(&[usize], &[usize]) -> f64,
{
    let folds = kfold_indices(n, k, seed);
    let mut total = 0.0;
    for valid in &folds {
        let valid_set: std::collections::BTreeSet<usize> = valid.iter().copied().collect();
        let train: Vec<usize> = (0..n).filter(|i| !valid_set.contains(i)).collect();
        total += fit_score(&train, valid);
    }
    total / k as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::confusion_matrix;

    #[test]
    fn report_known_values() {
        // truth:     0 0 1 1 1
        // predicted: 0 1 1 1 0
        let m = confusion_matrix(&[0, 0, 1, 1, 1], &[0, 1, 1, 1, 0], 2);
        let r = classification_report(&m);
        assert!((r[0].precision - 0.5).abs() < 1e-12);
        assert!((r[0].recall - 0.5).abs() < 1e-12);
        assert!((r[1].precision - 2.0 / 3.0).abs() < 1e-12);
        assert!((r[1].recall - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(r[0].support, 2);
        assert_eq!(r[1].support, 3);
        let f1 = macro_f1(&m);
        assert!((f1 - (0.5 + 2.0 / 3.0) / 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_class_handled() {
        let m = confusion_matrix(&[0, 0], &[0, 0], 3);
        let r = classification_report(&m);
        assert_eq!(r[2].support, 0);
        assert_eq!(r[2].f1, 0.0);
        // Macro-F1 skips unsupported classes.
        assert!((macro_f1(&m) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn brier_extremes() {
        // Perfect predictions.
        let perfect = brier_score(&[0, 1], &[vec![1.0, 0.0], vec![0.0, 1.0]]);
        assert!(perfect < 1e-12);
        // Maximally wrong.
        let wrong = brier_score(&[0], &[vec![0.0, 1.0]]);
        assert!((wrong - 2.0).abs() < 1e-12);
        // Uniform guess over 2 classes.
        let uniform = brier_score(&[0], &[vec![0.5, 0.5]]);
        assert!((uniform - 0.5).abs() < 1e-12);
    }

    #[test]
    fn kfold_partitions() {
        let folds = kfold_indices(23, 5, 9);
        assert_eq!(folds.len(), 5);
        let mut all: Vec<usize> = folds.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..23).collect::<Vec<_>>());
        for f in &folds {
            assert!(f.len() >= 4 && f.len() <= 5);
        }
    }

    #[test]
    fn cross_validate_averages() {
        // Score = validation fold size; mean must be n / k.
        let mean = cross_validate(20, 4, 1, |train, valid| {
            assert_eq!(train.len() + valid.len(), 20);
            valid.len() as f64
        });
        assert!((mean - 5.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "more folds than rows")]
    fn too_many_folds_panics() {
        kfold_indices(3, 5, 0);
    }
}
