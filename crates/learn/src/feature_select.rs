//! Correlation-pruning feature selection.
//!
//! §5.2 step (1): "passive-aggressive feature selection based on feature
//! importance to avoid the use of correlated features". We implement the
//! same effect deterministically: rank features by an importance vector,
//! then greedily keep features in rank order, dropping any candidate whose
//! absolute Pearson correlation with an already-kept feature exceeds a
//! threshold.

/// The outcome of feature selection.
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureSelection {
    /// Indices of kept features, in original column order.
    pub kept: Vec<usize>,
    /// Indices of dropped features with the kept feature that shadowed them.
    pub dropped: Vec<(usize, usize)>,
}

impl FeatureSelection {
    /// Projects a row onto the kept columns.
    pub fn project(&self, row: &[f64]) -> Vec<f64> {
        self.kept.iter().map(|&i| row[i]).collect()
    }

    /// Projects a whole matrix.
    pub fn project_all(&self, rows: &[Vec<f64>]) -> Vec<Vec<f64>> {
        rows.iter().map(|r| self.project(r)).collect()
    }
}

/// Pearson correlation of two equal-length columns; 0 when either is
/// constant.
pub fn pearson(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "length mismatch");
    let n = a.len() as f64;
    if n < 2.0 {
        return 0.0;
    }
    let ma = a.iter().sum::<f64>() / n;
    let mb = b.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for (&x, &y) in a.iter().zip(b) {
        cov += (x - ma) * (y - mb);
        va += (x - ma) * (x - ma);
        vb += (y - mb) * (y - mb);
    }
    if va <= 0.0 || vb <= 0.0 {
        return 0.0;
    }
    cov / (va.sqrt() * vb.sqrt())
}

/// Selects features from row-major `x` given per-feature `importance`
/// (higher = better) and a correlation threshold in `(0, 1]`.
///
/// Features are visited in decreasing importance; a feature is dropped when
/// `|corr|` with any kept feature exceeds `max_abs_corr`. Zero-importance
/// features are dropped outright (they never split a tree).
pub fn select_features(x: &[Vec<f64>], importance: &[f64], max_abs_corr: f64) -> FeatureSelection {
    assert!(!x.is_empty(), "need data");
    let d = x[0].len();
    assert_eq!(importance.len(), d, "importance width mismatch");
    assert!(
        (0.0..=1.0).contains(&max_abs_corr) && max_abs_corr > 0.0,
        "max_abs_corr must be in (0, 1]"
    );

    // Column views.
    let cols: Vec<Vec<f64>> = (0..d).map(|f| x.iter().map(|r| r[f]).collect()).collect();

    let mut order: Vec<usize> = (0..d).collect();
    order.sort_by(|&a, &b| importance[b].total_cmp(&importance[a]).then(a.cmp(&b)));

    let mut kept: Vec<usize> = Vec::new();
    let mut dropped: Vec<(usize, usize)> = Vec::new();
    for f in order {
        if importance[f] <= 0.0 {
            continue;
        }
        match kept
            .iter()
            .find(|&&k| pearson(&cols[f], &cols[k]).abs() > max_abs_corr)
        {
            Some(&shadow) => dropped.push((f, shadow)),
            None => kept.push(f),
        }
    }
    kept.sort_unstable();
    dropped.sort_unstable();
    FeatureSelection { kept, dropped }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pearson_known_values() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&a, &b) - 1.0).abs() < 1e-12);
        let c = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson(&a, &c) + 1.0).abs() < 1e-12);
        let d = [5.0, 5.0, 5.0, 5.0];
        assert_eq!(pearson(&a, &d), 0.0);
    }

    #[test]
    fn drops_duplicated_feature() {
        // f1 duplicates f0; f2 independent.
        let x: Vec<Vec<f64>> = (0..50)
            .map(|i| {
                let v = i as f64;
                vec![v, 2.0 * v + 1.0, (i % 7) as f64]
            })
            .collect();
        let sel = select_features(&x, &[0.5, 0.3, 0.2], 0.95);
        assert_eq!(sel.kept, vec![0, 2]);
        assert_eq!(sel.dropped, vec![(1, 0)]);
    }

    #[test]
    fn importance_order_decides_survivor() {
        let x: Vec<Vec<f64>> = (0..50)
            .map(|i| {
                let v = i as f64;
                vec![v, 2.0 * v]
            })
            .collect();
        // The second column is more important, so it survives.
        let sel = select_features(&x, &[0.1, 0.9], 0.95);
        assert_eq!(sel.kept, vec![1]);
        assert_eq!(sel.dropped, vec![(0, 1)]);
    }

    #[test]
    fn zero_importance_features_removed() {
        let x: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64, (i % 3) as f64]).collect();
        let sel = select_features(&x, &[0.7, 0.0], 0.9);
        assert_eq!(sel.kept, vec![0]);
        assert!(sel.dropped.is_empty());
    }

    #[test]
    fn projection_picks_kept_columns() {
        let sel = FeatureSelection {
            kept: vec![0, 2],
            dropped: vec![(1, 0)],
        };
        assert_eq!(sel.project(&[10.0, 20.0, 30.0]), vec![10.0, 30.0]);
        let all = sel.project_all(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        assert_eq!(all, vec![vec![1.0, 3.0], vec![4.0, 6.0]]);
    }

    #[test]
    fn independent_features_all_kept() {
        let x: Vec<Vec<f64>> = (0..60)
            .map(|i| vec![(i % 2) as f64, (i % 3) as f64, (i % 5) as f64])
            .collect();
        let sel = select_features(&x, &[0.4, 0.3, 0.3], 0.9);
        assert_eq!(sel.kept, vec![0, 1, 2]);
    }
}
