//! Multiclass gradient-boosted decision trees (softmax objective).
//!
//! The stand-in for `LGBMClassifier` — the model the paper reports as most
//! accurate (§5.2). Standard K-class boosting: per round, one second-order
//! gradient tree per class on the softmax gradients
//! `g_ic = p_ic - 1{y_i = c}`, `h_ic = p_ic (1 - p_ic)`, with shrinkage and
//! optional row subsampling. Split finding is histogram-based (see
//! [`crate::data::BinnedMatrix`]), which is precisely LightGBM's trick.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::data::BinnedMatrix;
use crate::tree::{GradientTree, TreeConfig};
use crate::Classifier;

/// GBDT hyper-parameters.
#[derive(Debug, Clone, Copy)]
pub struct GbdtConfig {
    /// Boosting rounds (trees per class).
    pub n_rounds: usize,
    /// Shrinkage (learning rate).
    pub learning_rate: f64,
    /// Per-tree hyper-parameters. Boosting itself is sequential (each
    /// round consumes the previous round's scores), so parallelism comes
    /// from the per-feature split search inside each tree, controlled by
    /// `tree.n_threads` (`0` = auto via `rv-par`).
    pub tree: TreeConfig,
    /// Fraction of rows sampled (without replacement) per round.
    pub subsample: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for GbdtConfig {
    fn default() -> Self {
        Self {
            n_rounds: 60,
            learning_rate: 0.15,
            tree: TreeConfig {
                max_depth: 5,
                min_samples_leaf: 20,
                lambda: 1.0,
                ..Default::default()
            },
            subsample: 0.9,
            seed: 0x9bd7,
        }
    }
}

/// A fitted multiclass GBDT classifier.
#[derive(Debug, Clone, PartialEq)]
pub struct GbdtClassifier {
    /// `trees[round][class]`.
    trees: Vec<Vec<GradientTree>>,
    /// Per-class prior log-odds (initial scores).
    base_scores: Vec<f64>,
    learning_rate: f64,
    n_classes: usize,
    n_features: usize,
}

impl GbdtClassifier {
    /// Fits the model on row-major features `x` and labels `y` (dense
    /// `0..n_classes`).
    pub fn fit(x: &[Vec<f64>], y: &[usize], n_classes: usize, config: &GbdtConfig) -> Self {
        assert_eq!(x.len(), y.len(), "row/label count mismatch");
        assert!(!x.is_empty(), "need training data");
        assert!(n_classes >= 2, "need at least two classes");
        assert!(y.iter().all(|&c| c < n_classes), "label out of range");
        assert!(
            (0.0..=1.0).contains(&config.subsample) && config.subsample > 0.0,
            "subsample must be in (0, 1]"
        );
        let n = x.len();
        let binned = BinnedMatrix::from_rows(x, 48);

        // Prior log-odds as base scores (log class frequency).
        let mut counts = vec![0usize; n_classes];
        for &c in y {
            counts[c] += 1;
        }
        let base_scores: Vec<f64> = counts
            .iter()
            .map(|&c| ((c.max(1)) as f64 / n as f64).ln())
            .collect();

        // scores[i][c]
        let mut scores: Vec<Vec<f64>> = vec![base_scores.clone(); n];
        let mut trees: Vec<Vec<GradientTree>> = Vec::with_capacity(config.n_rounds);
        let mut grad = vec![0.0f64; n];
        let mut hess = vec![0.0f64; n];
        let mut probs = vec![0.0f64; n_classes];

        let mut rng = SmallRng::seed_from_u64(config.seed);
        for _round in 0..config.n_rounds {
            // Row subsample for this round.
            let rows: Vec<usize> = if config.subsample >= 1.0 {
                (0..n).collect()
            } else {
                (0..n).filter(|_| rng.gen_bool(config.subsample)).collect()
            };
            let rows = if rows.is_empty() {
                (0..n).collect()
            } else {
                rows
            };

            let mut round_trees = Vec::with_capacity(n_classes);
            // Precompute softmax probabilities once per round.
            let mut prob_matrix: Vec<Vec<f64>> = Vec::with_capacity(n);
            for s in &scores {
                softmax_into(s, &mut probs);
                prob_matrix.push(probs.clone());
            }
            for c in 0..n_classes {
                for i in 0..n {
                    let p = prob_matrix[i][c];
                    grad[i] = p - if y[i] == c { 1.0 } else { 0.0 };
                    hess[i] = (p * (1.0 - p)).max(1e-6);
                }
                let tree = GradientTree::fit(&binned, &grad, &hess, &rows, &config.tree, &mut rng);
                for (i, s) in scores.iter_mut().enumerate() {
                    s[c] += config.learning_rate * tree.predict(&x[i]);
                }
                round_trees.push(tree);
            }
            trees.push(round_trees);
        }

        if rv_obs::enabled() {
            let n_trees: usize = trees.iter().map(|r| r.len()).sum();
            rv_obs::counter("learn.boosting.fits").inc();
            rv_obs::counter("learn.boosting.rounds").add(trees.len() as u64);
            rv_obs::counter("learn.trees_built").add(n_trees as u64);
            rv_obs::emit(
                "learn.boosting",
                &[
                    ("rows", rv_obs::FieldValue::from(n)),
                    ("classes", rv_obs::FieldValue::from(n_classes)),
                    ("rounds", rv_obs::FieldValue::from(trees.len())),
                    ("trees", rv_obs::FieldValue::from(n_trees)),
                ],
            );
        }

        Self {
            trees,
            base_scores,
            learning_rate: config.learning_rate,
            n_classes,
            n_features: x[0].len(),
        }
    }

    /// Raw (pre-softmax) scores for one row.
    pub fn decision_scores(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.n_features, "feature width mismatch");
        let mut s = self.base_scores.clone();
        for round in &self.trees {
            for (c, tree) in round.iter().enumerate() {
                s[c] += self.learning_rate * tree.predict(x);
            }
        }
        s
    }

    /// Total rounds fitted.
    pub fn n_rounds(&self) -> usize {
        self.trees.len()
    }

    /// Gain-based feature importance, normalized to sum 1.
    pub fn feature_importances(&self) -> Vec<f64> {
        let mut imp = vec![0.0; self.n_features];
        for round in &self.trees {
            for tree in round {
                tree.tree().accumulate_importance(&mut imp);
            }
        }
        let total: f64 = imp.iter().sum();
        if total > 0.0 {
            for v in &mut imp {
                *v /= total;
            }
        }
        imp
    }

    /// Writes as a `gbdt` header, a `base` score line, then one `gtree`
    /// block per round × class (round-major).
    pub fn write_text<W: std::io::Write>(&self, w: &mut W) -> std::io::Result<()> {
        writeln!(
            w,
            "gbdt,{},{},{},{}",
            self.trees.len(),
            self.n_classes,
            self.n_features,
            self.learning_rate
        )?;
        write!(w, "base")?;
        crate::serialize::write_list(w, &self.base_scores)?;
        for round in &self.trees {
            for tree in round {
                tree.write_text(w)?;
            }
        }
        Ok(())
    }

    /// Reads a model written by [`GbdtClassifier::write_text`].
    pub fn read_text<R: std::io::BufRead>(
        r: &mut crate::serialize::LineReader<R>,
    ) -> Result<Self, crate::serialize::SerializeError> {
        let header = r.expect_tag("gbdt")?;
        if header.len() != 4 {
            return Err(r.err("gbdt header needs n_rounds,n_classes,n_features,learning_rate"));
        }
        let n_rounds: usize = r.parse("n_rounds", &header[0])?;
        let n_classes: usize = r.parse("n_classes", &header[1])?;
        let n_features: usize = r.parse("n_features", &header[2])?;
        let learning_rate: f64 = r.parse("learning_rate", &header[3])?;
        let base_fields = r.expect_tag("base")?;
        let base_scores = r.parse_list_n("base score", &base_fields, n_classes)?;
        let mut trees = Vec::with_capacity(n_rounds);
        for _ in 0..n_rounds {
            let mut round = Vec::with_capacity(n_classes);
            for _ in 0..n_classes {
                round.push(GradientTree::read_text(r)?);
            }
            trees.push(round);
        }
        Ok(Self {
            trees,
            base_scores,
            learning_rate,
            n_classes,
            n_features,
        })
    }
}

impl Classifier for GbdtClassifier {
    fn n_classes(&self) -> usize {
        self.n_classes
    }

    fn predict_proba(&self, x: &[f64]) -> Vec<f64> {
        let s = self.decision_scores(x);
        let mut p = vec![0.0; s.len()];
        softmax_into(&s, &mut p);
        p
    }
}

fn softmax_into(scores: &[f64], out: &mut [f64]) {
    let max = scores.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let mut sum = 0.0;
    for (o, &s) in out.iter_mut().zip(scores) {
        *o = (s - max).exp();
        sum += *o;
    }
    for o in out.iter_mut() {
        *o /= sum;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn task() -> (Vec<Vec<f64>>, Vec<usize>) {
        // 3 classes determined by x0 with an irrelevant second feature.
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..400 {
            let v = (i % 40) as f64 / 4.0;
            x.push(vec![v, ((i * 31) % 17) as f64]);
            y.push(if v < 3.0 {
                0
            } else if v < 7.0 {
                1
            } else {
                2
            });
        }
        (x, y)
    }

    #[test]
    fn learns_clean_multiclass_task() {
        let (x, y) = task();
        let m = GbdtClassifier::fit(
            &x,
            &y,
            3,
            &GbdtConfig {
                n_rounds: 30,
                ..Default::default()
            },
        );
        let acc = x
            .iter()
            .zip(&y)
            .filter(|(xi, &yi)| m.predict(xi) == yi)
            .count() as f64
            / x.len() as f64;
        assert!(acc > 0.99, "accuracy {acc}");
    }

    #[test]
    fn probabilities_valid() {
        let (x, y) = task();
        let m = GbdtClassifier::fit(
            &x,
            &y,
            3,
            &GbdtConfig {
                n_rounds: 10,
                ..Default::default()
            },
        );
        for xi in x.iter().take(20) {
            let p = m.predict_proba(xi);
            assert_eq!(p.len(), 3);
            assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            assert!(p.iter().all(|&v| v >= 0.0));
        }
    }

    #[test]
    fn zero_rounds_predicts_prior() {
        let (x, y) = task();
        let m = GbdtClassifier::fit(
            &x,
            &y,
            3,
            &GbdtConfig {
                n_rounds: 0,
                ..Default::default()
            },
        );
        let p = m.predict_proba(&x[0]);
        // Class frequencies: 12/40, 16/40, 12/40.
        assert!((p[0] - 0.3).abs() < 0.02, "prior {p:?}");
        assert!((p[1] - 0.4).abs() < 0.02);
    }

    #[test]
    fn deterministic_given_seed() {
        let (x, y) = task();
        let cfg = GbdtConfig {
            n_rounds: 8,
            seed: 4,
            ..Default::default()
        };
        let a = GbdtClassifier::fit(&x, &y, 3, &cfg);
        let b = GbdtClassifier::fit(&x, &y, 3, &cfg);
        for xi in x.iter().take(20) {
            assert_eq!(a.predict_proba(xi), b.predict_proba(xi));
        }
    }

    #[test]
    fn more_rounds_do_not_hurt_train_accuracy() {
        let (x, y) = task();
        let acc = |rounds: usize| {
            let m = GbdtClassifier::fit(
                &x,
                &y,
                3,
                &GbdtConfig {
                    n_rounds: rounds,
                    ..Default::default()
                },
            );
            x.iter()
                .zip(&y)
                .filter(|(xi, &yi)| m.predict(xi) == yi)
                .count() as f64
                / x.len() as f64
        };
        assert!(acc(30) >= acc(2) - 1e-9);
    }

    #[test]
    fn importances_identify_signal() {
        let (x, y) = task();
        let m = GbdtClassifier::fit(
            &x,
            &y,
            3,
            &GbdtConfig {
                n_rounds: 15,
                ..Default::default()
            },
        );
        let imp = m.feature_importances();
        assert!(imp[0] > 0.9, "importances {imp:?}");
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn rejects_bad_labels() {
        GbdtClassifier::fit(&[vec![1.0]], &[5], 2, &GbdtConfig::default());
    }

    #[test]
    fn handles_imbalanced_classes() {
        // 95% class 0, 5% class 1 with a clean separator.
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..400 {
            let outlier = i % 20 == 0;
            x.push(vec![if outlier { 10.0 } else { (i % 5) as f64 }]);
            y.push(usize::from(outlier));
        }
        let m = GbdtClassifier::fit(
            &x,
            &y,
            2,
            &GbdtConfig {
                n_rounds: 20,
                ..Default::default()
            },
        );
        let acc = x
            .iter()
            .zip(&y)
            .filter(|(xi, &yi)| m.predict(xi) == yi)
            .count() as f64
            / x.len() as f64;
        assert!(acc > 0.99, "imbalanced accuracy {acc}");
    }
}
