//! Line-oriented, std-only serialization plumbing for fitted models.
//!
//! Every model in this crate can persist itself as versionable CSV-ish text
//! via `write_text` / `read_text` pairs defined next to its (module-private)
//! fields. The format rules are shared with the artifact layer in `rv-core`:
//!
//! * one record per line, comma-separated, first field is the record tag;
//! * floats through `{}` (`Display`), which in Rust is shortest-round-trip —
//!   parsing the text restores the exact bits, so a write→read cycle is
//!   lossless and warm-cache reruns stay byte-identical;
//! * counts precede repeated blocks, so readers never scan ahead.
//!
//! This module holds the shared plumbing: a position-tracking [`LineReader`]
//! and the [`SerializeError`] type carrying the offending line number.

use std::fmt;
use std::io::BufRead;
use std::str::FromStr;

/// A parse failure while reading a serialized model or artifact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SerializeError {
    /// 1-based line number where parsing failed (0 when unknown).
    pub line: usize,
    /// Human-readable description of the failure.
    pub message: String,
}

impl SerializeError {
    /// Creates an error at an explicit line.
    pub fn at(line: usize, message: impl Into<String>) -> Self {
        Self {
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for SerializeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for SerializeError {}

/// A [`BufRead`] wrapper that tracks line numbers and strips newlines, so
/// every parse error can point at its source line.
pub struct LineReader<R> {
    inner: R,
    line: usize,
}

impl<R: BufRead> LineReader<R> {
    /// Wraps a buffered reader; line numbering starts at 1 on first read.
    pub fn new(inner: R) -> Self {
        Self { inner, line: 0 }
    }

    /// The number of the most recently read line (1-based).
    pub fn line(&self) -> usize {
        self.line
    }

    /// An error positioned at the current line.
    pub fn err(&self, message: impl Into<String>) -> SerializeError {
        SerializeError::at(self.line, message)
    }

    /// Reads the next line without its trailing newline; `None` at EOF.
    pub fn try_next_line(&mut self) -> Result<Option<String>, SerializeError> {
        let mut buf = String::new();
        self.line += 1;
        match self.inner.read_line(&mut buf) {
            Ok(0) => Ok(None),
            Ok(_) => {
                while buf.ends_with('\n') || buf.ends_with('\r') {
                    buf.pop();
                }
                Ok(Some(buf))
            }
            Err(e) => Err(self.err(format!("read failed: {e}"))),
        }
    }

    /// Reads the next line; EOF is an error.
    pub fn next_line(&mut self) -> Result<String, SerializeError> {
        match self.try_next_line()? {
            Some(line) => Ok(line),
            None => Err(self.err("unexpected end of input")),
        }
    }

    /// Reads the next line as `(tag, fields)` split on commas.
    pub fn next_record(&mut self) -> Result<(String, Vec<String>), SerializeError> {
        let line = self.next_line()?;
        let mut parts = line.split(',');
        let tag = parts.next().unwrap_or("").to_string();
        Ok((tag, parts.map(str::to_string).collect()))
    }

    /// Reads the next line, requiring its tag to equal `tag`; returns the
    /// remaining fields.
    pub fn expect_tag(&mut self, tag: &str) -> Result<Vec<String>, SerializeError> {
        let (found, fields) = self.next_record()?;
        if found == tag {
            Ok(fields)
        } else {
            Err(self.err(format!("expected `{tag}` record, found `{found}`")))
        }
    }

    /// Parses one field at the current line, naming it in errors.
    pub fn parse<T: FromStr>(&self, what: &str, field: &str) -> Result<T, SerializeError>
    where
        T::Err: fmt::Display,
    {
        field
            .parse()
            .map_err(|e| self.err(format!("bad {what} `{field}`: {e}")))
    }

    /// Parses a whole field slice as a list of one type.
    pub fn parse_list<T: FromStr>(
        &self,
        what: &str,
        fields: &[String],
    ) -> Result<Vec<T>, SerializeError>
    where
        T::Err: fmt::Display,
    {
        fields.iter().map(|f| self.parse(what, f)).collect()
    }

    /// Parses exactly `n` fields as a list, erroring on a count mismatch.
    pub fn parse_list_n<T: FromStr>(
        &self,
        what: &str,
        fields: &[String],
        n: usize,
    ) -> Result<Vec<T>, SerializeError>
    where
        T::Err: fmt::Display,
    {
        if fields.len() != n {
            return Err(self.err(format!(
                "expected {n} {what} fields, found {}",
                fields.len()
            )));
        }
        self.parse_list(what, fields)
    }
}

/// Writes a comma-joined list of `Display` values after an existing prefix.
pub fn write_list<W: std::io::Write, T: fmt::Display>(
    w: &mut W,
    values: &[T],
) -> std::io::Result<()> {
    for v in values {
        write!(w, ",{v}")?;
    }
    writeln!(w)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_records_and_tracks_lines() {
        let text = "alpha,1,2\nbeta,3\n";
        let mut r = LineReader::new(text.as_bytes());
        let fields = r.expect_tag("alpha").expect("alpha record");
        assert_eq!(fields, vec!["1", "2"]);
        assert_eq!(r.line(), 1);
        let (tag, fields) = r.next_record().expect("beta record");
        assert_eq!(tag, "beta");
        assert_eq!(fields, vec!["3"]);
        assert_eq!(r.line(), 2);
        assert!(r.try_next_line().expect("eof ok").is_none());
    }

    #[test]
    fn wrong_tag_errors_with_line() {
        let mut r = LineReader::new("beta,1\n".as_bytes());
        let err = r.expect_tag("alpha").expect_err("tag mismatch");
        assert_eq!(err.line, 1);
        assert!(err.message.contains("alpha"));
        assert!(err.message.contains("beta"));
    }

    #[test]
    fn eof_is_an_error_for_next_line() {
        let mut r = LineReader::new("".as_bytes());
        let err = r.next_line().expect_err("eof");
        assert!(err.message.contains("end of input"));
    }

    #[test]
    fn floats_round_trip_exactly_through_display() {
        for v in [0.1, 1.0 / 3.0, f64::MIN_POSITIVE, 1e300, -0.0] {
            let s = format!("{v}");
            let r = LineReader::new("".as_bytes());
            let back: f64 = r.parse("float", &s).expect("parse");
            assert_eq!(back.to_bits(), v.to_bits(), "value {v}");
        }
    }

    #[test]
    fn parse_list_n_rejects_wrong_count() {
        let r = LineReader::new("".as_bytes());
        let fields: Vec<String> = vec!["1".into(), "2".into()];
        assert!(r.parse_list_n::<f64>("x", &fields, 3).is_err());
        assert_eq!(
            r.parse_list_n::<f64>("x", &fields, 2).expect("ok"),
            vec![1.0, 2.0]
        );
    }
}
