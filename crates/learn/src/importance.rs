//! Gini / gain feature importance helpers (§5.2's "Gini importance").

use crate::forest::RandomForestClassifier;
use crate::gbdt::GbdtClassifier;

/// Normalized gain-based importance of a random forest, paired with feature
/// names and sorted descending.
pub fn gini_importance<'a>(
    forest: &RandomForestClassifier,
    names: &'a [&'a str],
) -> Vec<(&'a str, f64)> {
    rank(forest.feature_importances(), names)
}

/// Normalized gain-based importance of a GBDT model, paired with names and
/// sorted descending.
pub fn gbdt_importance<'a>(model: &GbdtClassifier, names: &'a [&'a str]) -> Vec<(&'a str, f64)> {
    rank(model.feature_importances(), names)
}

fn rank<'a>(importances: Vec<f64>, names: &'a [&'a str]) -> Vec<(&'a str, f64)> {
    assert_eq!(
        importances.len(),
        names.len(),
        "importance/name width mismatch"
    );
    let mut pairs: Vec<(&str, f64)> = names.iter().copied().zip(importances).collect();
    pairs.sort_by(|a, b| b.1.total_cmp(&a.1));
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forest::RandomForestConfig;
    use crate::gbdt::GbdtConfig;

    fn task() -> (Vec<Vec<f64>>, Vec<usize>) {
        let x: Vec<Vec<f64>> = (0..200)
            .map(|i| vec![(i % 10) as f64, ((i * 13) % 7) as f64])
            .collect();
        let y: Vec<usize> = x.iter().map(|r| usize::from(r[0] > 4.0)).collect();
        (x, y)
    }

    #[test]
    fn forest_importance_ranked() {
        let (x, y) = task();
        let rf = RandomForestClassifier::fit(
            &x,
            &y,
            2,
            &RandomForestConfig {
                n_trees: 10,
                ..Default::default()
            },
        );
        let ranked = gini_importance(&rf, &["signal", "noise"]);
        assert_eq!(ranked[0].0, "signal");
        assert!(ranked[0].1 > ranked[1].1);
    }

    #[test]
    fn gbdt_importance_ranked() {
        let (x, y) = task();
        let m = GbdtClassifier::fit(
            &x,
            &y,
            2,
            &GbdtConfig {
                n_rounds: 10,
                ..Default::default()
            },
        );
        let ranked = gbdt_importance(&m, &["signal", "noise"]);
        assert_eq!(ranked[0].0, "signal");
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn name_mismatch_panics() {
        let (x, y) = task();
        let rf = RandomForestClassifier::fit(
            &x,
            &y,
            2,
            &RandomForestConfig {
                n_trees: 2,
                ..Default::default()
            },
        );
        gini_importance(&rf, &["only-one"]);
    }
}
