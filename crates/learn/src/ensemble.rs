//! Soft-voting ensembles over heterogeneous classifiers (§5.2's
//! `EnsembledClassifier`).

use crate::Classifier;

/// Averages member class-probability vectors with optional weights.
pub struct SoftVotingEnsemble {
    members: Vec<Box<dyn Classifier>>,
    weights: Vec<f64>,
    n_classes: usize,
}

impl SoftVotingEnsemble {
    /// Builds an equally-weighted ensemble.
    ///
    /// # Panics
    /// Panics if `members` is empty or class counts disagree.
    pub fn new(members: Vec<Box<dyn Classifier>>) -> Self {
        let n = members.len();
        Self::weighted(members, vec![1.0; n])
    }

    /// Builds a weighted ensemble; weights are normalized internally.
    ///
    /// # Panics
    /// Panics if shapes disagree, weights are non-positive, or `members` is
    /// empty.
    pub fn weighted(members: Vec<Box<dyn Classifier>>, weights: Vec<f64>) -> Self {
        assert!(!members.is_empty(), "ensemble needs at least one member");
        assert_eq!(members.len(), weights.len(), "member/weight mismatch");
        assert!(
            weights.iter().all(|&w| w > 0.0 && w.is_finite()),
            "weights must be positive and finite"
        );
        let n_classes = members[0].n_classes();
        assert!(
            members.iter().all(|m| m.n_classes() == n_classes),
            "members must agree on the class count"
        );
        let total: f64 = weights.iter().sum();
        let weights = weights.into_iter().map(|w| w / total).collect();
        Self {
            members,
            weights,
            n_classes,
        }
    }

    /// Number of member models.
    pub fn n_members(&self) -> usize {
        self.members.len()
    }
}

impl Classifier for SoftVotingEnsemble {
    fn n_classes(&self) -> usize {
        self.n_classes
    }

    fn predict_proba(&self, x: &[f64]) -> Vec<f64> {
        let mut acc = vec![0.0; self.n_classes];
        for (m, &w) in self.members.iter().zip(&self.weights) {
            for (a, p) in acc.iter_mut().zip(m.predict_proba(x)) {
                *a += w * p;
            }
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A fixed-probability stub classifier.
    struct Stub(Vec<f64>);
    impl Classifier for Stub {
        fn n_classes(&self) -> usize {
            self.0.len()
        }
        fn predict_proba(&self, _x: &[f64]) -> Vec<f64> {
            self.0.clone()
        }
    }

    #[test]
    fn equal_weights_average() {
        let e = SoftVotingEnsemble::new(vec![
            Box::new(Stub(vec![1.0, 0.0])),
            Box::new(Stub(vec![0.0, 1.0])),
        ]);
        let p = e.predict_proba(&[0.0]);
        assert!((p[0] - 0.5).abs() < 1e-12);
        assert!((p[1] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn weights_tilt_vote() {
        let e = SoftVotingEnsemble::weighted(
            vec![
                Box::new(Stub(vec![1.0, 0.0])),
                Box::new(Stub(vec![0.0, 1.0])),
            ],
            vec![3.0, 1.0],
        );
        assert_eq!(e.predict(&[0.0]), 0);
        let p = e.predict_proba(&[0.0]);
        assert!((p[0] - 0.75).abs() < 1e-12);
    }

    #[test]
    fn output_is_distribution() {
        let e = SoftVotingEnsemble::new(vec![
            Box::new(Stub(vec![0.2, 0.3, 0.5])),
            Box::new(Stub(vec![0.6, 0.1, 0.3])),
        ]);
        let p = e.predict_proba(&[0.0]);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert_eq!(e.n_members(), 2);
    }

    #[test]
    #[should_panic(expected = "agree on the class count")]
    fn class_count_mismatch_panics() {
        SoftVotingEnsemble::new(vec![
            Box::new(Stub(vec![1.0, 0.0])),
            Box::new(Stub(vec![0.5, 0.25, 0.25])),
        ]);
    }

    #[test]
    #[should_panic(expected = "at least one member")]
    fn empty_ensemble_panics() {
        SoftVotingEnsemble::new(Vec::new());
    }
}
