//! Classification metrics: accuracy and confusion matrices (Fig 7a).

/// Fraction of predictions equal to the truth.
///
/// # Panics
/// Panics if lengths differ or are zero.
pub fn accuracy(truth: &[usize], predicted: &[usize]) -> f64 {
    assert_eq!(truth.len(), predicted.len(), "length mismatch");
    assert!(!truth.is_empty(), "need at least one prediction");
    truth.iter().zip(predicted).filter(|(t, p)| t == p).count() as f64 / truth.len() as f64
}

/// A row-normalizable confusion matrix: `counts[actual][predicted]`.
#[derive(Debug, Clone, PartialEq)]
pub struct ConfusionMatrix {
    counts: Vec<Vec<u64>>,
}

impl ConfusionMatrix {
    /// Rebuilds a matrix from raw counts (the deserialization counterpart of
    /// [`ConfusionMatrix::counts`]).
    ///
    /// # Panics
    /// Panics if the matrix is not square.
    pub fn from_counts(counts: Vec<Vec<u64>>) -> Self {
        assert!(
            counts.iter().all(|row| row.len() == counts.len()),
            "confusion matrix must be square"
        );
        Self { counts }
    }

    /// Raw counts, `counts[actual][predicted]`.
    pub fn counts(&self) -> &[Vec<u64>] {
        &self.counts
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.counts.len()
    }

    /// Row-normalized rates (each actual-class row sums to 1, as in the
    /// paper's Fig 7a). Rows with no samples stay all-zero.
    pub fn row_rates(&self) -> Vec<Vec<f64>> {
        self.counts
            .iter()
            .map(|row| {
                let total: u64 = row.iter().sum();
                if total == 0 {
                    vec![0.0; row.len()]
                } else {
                    row.iter().map(|&c| c as f64 / total as f64).collect()
                }
            })
            .collect()
    }

    /// Overall accuracy (trace over total).
    pub fn accuracy(&self) -> f64 {
        let total: u64 = self.counts.iter().flatten().sum();
        if total == 0 {
            return 0.0;
        }
        let correct: u64 = (0..self.counts.len()).map(|i| self.counts[i][i]).sum();
        correct as f64 / total as f64
    }

    /// Per-class recall (diagonal of the row rates).
    pub fn per_class_recall(&self) -> Vec<f64> {
        self.row_rates()
            .iter()
            .enumerate()
            .map(|(i, row)| row[i])
            .collect()
    }

    /// Renders as an aligned text table (for experiment reports).
    pub fn to_table(&self) -> String {
        let rates = self.row_rates();
        let mut out = String::from("actual\\pred");
        for c in 0..self.n_classes() {
            out.push_str(&format!("{c:>8}"));
        }
        out.push('\n');
        for (i, row) in rates.iter().enumerate() {
            out.push_str(&format!("{i:>11}"));
            for v in row {
                out.push_str(&format!("{v:>8.3}"));
            }
            out.push('\n');
        }
        out
    }
}

/// Builds a confusion matrix over `n_classes`.
///
/// # Panics
/// Panics on length mismatch or out-of-range labels.
pub fn confusion_matrix(truth: &[usize], predicted: &[usize], n_classes: usize) -> ConfusionMatrix {
    assert_eq!(truth.len(), predicted.len(), "length mismatch");
    let mut counts = vec![vec![0u64; n_classes]; n_classes];
    for (&t, &p) in truth.iter().zip(predicted) {
        assert!(t < n_classes && p < n_classes, "label out of range");
        counts[t][p] += 1;
    }
    ConfusionMatrix { counts }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_basic() {
        assert_eq!(accuracy(&[0, 1, 2], &[0, 1, 1]), 2.0 / 3.0);
        assert_eq!(accuracy(&[1], &[1]), 1.0);
    }

    #[test]
    fn confusion_counts() {
        let m = confusion_matrix(&[0, 0, 1, 1, 1], &[0, 1, 1, 1, 0], 2);
        assert_eq!(m.counts()[0], vec![1, 1]);
        assert_eq!(m.counts()[1], vec![1, 2]);
        assert!((m.accuracy() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn row_rates_sum_to_one() {
        let m = confusion_matrix(&[0, 0, 1, 2, 2, 2], &[0, 1, 1, 2, 2, 0], 3);
        for row in m.row_rates() {
            let s: f64 = row.iter().sum();
            assert!((s - 1.0).abs() < 1e-12);
        }
        assert_eq!(m.per_class_recall(), vec![0.5, 1.0, 2.0 / 3.0]);
    }

    #[test]
    fn empty_class_row_is_zero() {
        let m = confusion_matrix(&[0, 0], &[0, 0], 3);
        assert_eq!(m.row_rates()[2], vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn table_renders() {
        let m = confusion_matrix(&[0, 1], &[0, 1], 2);
        let t = m.to_table();
        assert!(t.contains("actual"));
        assert!(t.lines().count() == 3);
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn rejects_bad_label() {
        confusion_matrix(&[5], &[0], 2);
    }
}
