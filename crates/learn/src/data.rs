//! Tabular data containers, splits, and quantile binning.
//!
//! Tree training uses the histogram trick: each feature is quantized once into
//! at most 64 quantile bins, after which split search touches only compact
//! `u8` codes. Predictions still use raw `f64` thresholds, so models apply
//! to unbinned rows.

use rand::rngs::SmallRng;
use rand::{seq::SliceRandom, SeedableRng};

/// A labelled tabular dataset (classification labels are dense `0..k`).
#[derive(Debug, Clone, Default)]
pub struct TabularData {
    /// Row-major feature matrix.
    pub x: Vec<Vec<f64>>,
    /// Class label per row.
    pub y: Vec<usize>,
}

impl TabularData {
    /// Creates a dataset, validating shape.
    ///
    /// # Panics
    /// Panics if `x` and `y` lengths differ or rows are ragged.
    pub fn new(x: Vec<Vec<f64>>, y: Vec<usize>) -> Self {
        assert_eq!(x.len(), y.len(), "row/label count mismatch");
        if let Some(first) = x.first() {
            let d = first.len();
            assert!(x.iter().all(|r| r.len() == d), "ragged feature rows");
        }
        Self { x, y }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.x.len()
    }

    /// Whether there are no rows.
    pub fn is_empty(&self) -> bool {
        self.x.is_empty()
    }

    /// Number of feature columns (0 when empty).
    pub fn n_features(&self) -> usize {
        self.x.first().map_or(0, |r| r.len())
    }

    /// Number of classes (`max(y) + 1`; 0 when empty).
    pub fn n_classes(&self) -> usize {
        self.y.iter().copied().max().map_or(0, |m| m + 1)
    }
}

/// Deterministically splits `(x, y)` into train and test partitions with
/// `test_fraction` of rows in the test set.
pub fn train_test_split(
    data: &TabularData,
    test_fraction: f64,
    seed: u64,
) -> (TabularData, TabularData) {
    assert!(
        (0.0..1.0).contains(&test_fraction),
        "test_fraction must be in [0, 1)"
    );
    let mut idx: Vec<usize> = (0..data.len()).collect();
    idx.shuffle(&mut SmallRng::seed_from_u64(seed));
    let n_test = (data.len() as f64 * test_fraction).round() as usize;
    let (test_idx, train_idx) = idx.split_at(n_test.min(data.len()));
    let take = |ids: &[usize]| TabularData {
        x: ids.iter().map(|&i| data.x[i].clone()).collect(),
        y: ids.iter().map(|&i| data.y[i]).collect(),
    };
    (take(train_idx), take(test_idx))
}

/// Quantile-binned view of a feature matrix for fast tree training.
#[derive(Debug, Clone)]
pub struct BinnedMatrix {
    /// Per-feature ascending bin upper edges (`edges[f][b]` is the largest
    /// raw value coded as bin `b`; values above the last edge get the last
    /// bin).
    edges: Vec<Vec<f64>>,
    /// Column-major codes: `codes[f][row]`.
    codes: Vec<Vec<u8>>,
    n_rows: usize,
}

impl BinnedMatrix {
    /// Maximum bins per feature.
    pub const MAX_BINS: usize = 64;

    /// Builds the binned view of `rows` with at most `max_bins` quantile
    /// bins per feature.
    pub fn from_rows(rows: &[Vec<f64>], max_bins: usize) -> Self {
        assert!(!rows.is_empty(), "need at least one row");
        assert!(
            (2..=Self::MAX_BINS).contains(&max_bins),
            "max_bins must be in 2..=64"
        );
        let n_rows = rows.len();
        let n_features = rows[0].len();
        assert!(rows.iter().all(|r| r.len() == n_features), "ragged rows");

        let mut edges = Vec::with_capacity(n_features);
        let mut codes = Vec::with_capacity(n_features);
        let mut col = vec![0.0f64; n_rows];
        for f in 0..n_features {
            for (i, r) in rows.iter().enumerate() {
                col[i] = r[f];
            }
            let fe = quantile_edges(&col, max_bins);
            let fc: Vec<u8> = col.iter().map(|&v| code_of(&fe, v)).collect();
            edges.push(fe);
            codes.push(fc);
        }
        Self {
            edges,
            codes,
            n_rows,
        }
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of features.
    pub fn n_features(&self) -> usize {
        self.codes.len()
    }

    /// Number of bins actually used by feature `f`.
    pub fn n_bins(&self, f: usize) -> usize {
        self.edges[f].len()
    }

    /// The code of row `row` in feature `f`.
    #[inline]
    pub fn code(&self, f: usize, row: usize) -> u8 {
        self.codes[f][row]
    }

    /// Raw threshold corresponding to splitting feature `f` at code `<= b`:
    /// prediction-time comparisons use `value <= threshold`.
    pub fn threshold(&self, f: usize, b: u8) -> f64 {
        self.edges[f][b as usize]
    }

    /// Codes a raw value of feature `f` (for out-of-sample rows).
    pub fn code_value(&self, f: usize, v: f64) -> u8 {
        code_of(&self.edges[f], v)
    }
}

/// Ascending unique quantile edges (bin upper bounds) for one column.
fn quantile_edges(col: &[f64], max_bins: usize) -> Vec<f64> {
    let mut sorted: Vec<f64> = col.iter().copied().filter(|v| v.is_finite()).collect();
    if sorted.is_empty() {
        return vec![0.0];
    }
    sorted.sort_by(f64::total_cmp);
    let n = sorted.len();
    let mut edges: Vec<f64> = Vec::with_capacity(max_bins);
    for b in 0..max_bins {
        let q = (b + 1) as f64 / max_bins as f64;
        let idx = ((q * n as f64).ceil() as usize).clamp(1, n) - 1;
        let e = sorted[idx];
        if edges.last().map_or(true, |&last| e > last) {
            edges.push(e);
        }
    }
    edges
}

#[inline]
fn code_of(edges: &[f64], v: f64) -> u8 {
    if v.is_nan() {
        return (edges.len() - 1) as u8;
    }
    // Binary search for the first edge >= v.
    match edges.binary_search_by(|e| e.total_cmp(&v)) {
        Ok(i) => i as u8,
        Err(i) => i.min(edges.len() - 1) as u8,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tabular_shape_checks() {
        let d = TabularData::new(vec![vec![1.0, 2.0], vec![3.0, 4.0]], vec![0, 1]);
        assert_eq!(d.len(), 2);
        assert_eq!(d.n_features(), 2);
        assert_eq!(d.n_classes(), 2);
    }

    #[test]
    #[should_panic(expected = "ragged feature rows")]
    fn ragged_rows_panic() {
        TabularData::new(vec![vec![1.0], vec![1.0, 2.0]], vec![0, 0]);
    }

    #[test]
    fn split_partitions_rows() {
        let d = TabularData::new(
            (0..100).map(|i| vec![i as f64]).collect(),
            (0..100).map(|i| i % 3).collect(),
        );
        let (train, test) = train_test_split(&d, 0.25, 7);
        assert_eq!(test.len(), 25);
        assert_eq!(train.len(), 75);
        // Disjoint and exhaustive.
        let mut all: Vec<f64> = train.x.iter().chain(test.x.iter()).map(|r| r[0]).collect();
        all.sort_by(f64::total_cmp);
        assert_eq!(all, (0..100).map(|i| i as f64).collect::<Vec<_>>());
    }

    #[test]
    fn split_deterministic() {
        let d = TabularData::new((0..50).map(|i| vec![i as f64]).collect(), vec![0; 50]);
        let (a, _) = train_test_split(&d, 0.2, 3);
        let (b, _) = train_test_split(&d, 0.2, 3);
        assert_eq!(a.x, b.x);
    }

    #[test]
    fn binning_round_trip() {
        let rows: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64, (i * i) as f64]).collect();
        let m = BinnedMatrix::from_rows(&rows, 16);
        assert_eq!(m.n_rows(), 100);
        assert_eq!(m.n_features(), 2);
        // Codes must be monotone in the raw values.
        for f in 0..2 {
            for i in 1..100 {
                assert!(m.code(f, i) >= m.code(f, i - 1));
            }
            assert!(m.n_bins(f) <= 16);
        }
    }

    #[test]
    fn out_of_sample_coding_consistent() {
        let rows: Vec<Vec<f64>> = (0..64).map(|i| vec![i as f64]).collect();
        let m = BinnedMatrix::from_rows(&rows, 8);
        for i in 0..64 {
            assert_eq!(m.code_value(0, i as f64), m.code(0, i));
        }
        // Values beyond the training range clamp to the edge bins.
        assert_eq!(m.code_value(0, -100.0), 0);
        assert_eq!(m.code_value(0, 1e9) as usize, m.n_bins(0) - 1);
    }

    #[test]
    fn constant_column_single_bin() {
        let rows = vec![vec![5.0]; 20];
        let m = BinnedMatrix::from_rows(&rows, 8);
        assert_eq!(m.n_bins(0), 1);
        assert_eq!(m.code_value(0, 5.0), 0);
    }

    #[test]
    fn threshold_separates_codes() {
        let rows: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64]).collect();
        let m = BinnedMatrix::from_rows(&rows, 4);
        for b in 0..m.n_bins(0) as u8 {
            let th = m.threshold(0, b);
            for i in 0..100 {
                let v = i as f64;
                if m.code(0, i) <= b {
                    assert!(v <= th, "row {i} code {} edge {th}", m.code(0, i));
                } else {
                    assert!(v > th);
                }
            }
        }
    }
}
