//! # rv-learn — from-scratch machine learning for tabular data
//!
//! The paper's predictive step (§5.2) fits tree-ensemble classifiers
//! (LightGBM, RandomForest, GradientBoosting, GaussianNB, and a soft-voting
//! ensemble of them) to predict a job's runtime-distribution shape, and the
//! Griffon-style baseline \[65\] is a random-forest *regressor* on raw
//! runtimes. None of those libraries exist in Rust, so this crate implements
//! the family natively:
//!
//! * [`data`] — row-major datasets, deterministic train/test splits, and the
//!   quantile-binned feature codes that make tree training fast
//!   (the LightGBM histogram trick);
//! * [`tree`] — CART decision trees: Gini classification trees and
//!   second-order (Newton) gradient trees;
//! * [`forest`] — bagged random forests (classifier and regressor);
//! * [`gbdt`] — multiclass softmax gradient-boosted trees, the stand-in for
//!   `LGBMClassifier`;
//! * [`naive_bayes`] — Gaussian naive Bayes;
//! * [`ensemble`] — soft-voting over heterogeneous classifiers;
//! * [`feature_select`] — correlation-pruning feature selection (§5.2's
//!   "passive-aggressive feature selection ... to avoid the use of
//!   correlated features");
//! * [`metrics`] — accuracy, confusion matrices, per-class rates;
//! * [`validation`] — precision/recall/F1 reports, Brier calibration
//!   scores, and k-fold cross-validation;
//! * [`importance`] — impurity-decrease (Gini) feature importance;
//! * [`sweep`] — hyper-parameter grid sweeps on a validation split.

pub mod data;
pub mod ensemble;
pub mod feature_select;
pub mod forest;
pub mod gbdt;
pub mod importance;
pub mod metrics;
pub mod naive_bayes;
pub mod serialize;
pub mod sweep;
pub mod tree;
pub mod validation;

pub use data::{train_test_split, BinnedMatrix, TabularData};
pub use ensemble::SoftVotingEnsemble;
pub use feature_select::{select_features, FeatureSelection};
pub use forest::{RandomForestClassifier, RandomForestConfig, RandomForestRegressor};
pub use gbdt::{GbdtClassifier, GbdtConfig};
pub use importance::gini_importance;
pub use metrics::{accuracy, confusion_matrix, ConfusionMatrix};
pub use naive_bayes::GaussianNb;
pub use serialize::{LineReader, SerializeError};
pub use sweep::{sweep_gbdt, SweepResult};
pub use validation::{
    brier_score, classification_report, cross_validate, kfold_indices, macro_f1, ClassReport,
};

/// A probabilistic multiclass classifier over dense `f64` feature rows.
pub trait Classifier: Send + Sync {
    /// Number of classes the model was trained on.
    fn n_classes(&self) -> usize;
    /// Class-probability vector for one row (sums to 1).
    fn predict_proba(&self, x: &[f64]) -> Vec<f64>;
    /// Most probable class for one row.
    fn predict(&self, x: &[f64]) -> usize {
        let p = self.predict_proba(x);
        p.iter()
            .enumerate()
            .max_by(|(_, a), (_, b)| a.total_cmp(b))
            .map(|(i, _)| i)
            .expect("at least one class")
    }
    /// Predictions for a batch of rows.
    fn predict_batch(&self, xs: &[Vec<f64>]) -> Vec<usize> {
        xs.iter().map(|x| self.predict(x)).collect()
    }
}

/// A regressor over dense `f64` feature rows.
pub trait Regressor: Send + Sync {
    /// Point prediction for one row.
    fn predict(&self, x: &[f64]) -> f64;
    /// Predictions for a batch of rows.
    fn predict_batch(&self, xs: &[Vec<f64>]) -> Vec<f64> {
        xs.iter().map(|x| self.predict(x)).collect()
    }
}
