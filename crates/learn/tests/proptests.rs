//! Property-based tests for the learning substrate.

use proptest::prelude::*;

use rv_learn::{
    train_test_split, BinnedMatrix, Classifier, GaussianNb, GbdtClassifier, GbdtConfig,
    RandomForestClassifier, RandomForestConfig, TabularData,
};

fn dataset(max_n: usize) -> impl Strategy<Value = (Vec<Vec<f64>>, Vec<usize>)> {
    prop::collection::vec(
        (prop::collection::vec(-50.0..50.0f64, 3..=3), 0usize..3),
        12..max_n,
    )
    .prop_map(|rows| {
        let mut seen = [false; 3];
        let mut x = Vec::with_capacity(rows.len());
        let mut y = Vec::with_capacity(rows.len());
        for (i, (features, label)) in rows.into_iter().enumerate() {
            // Guarantee all three classes appear.
            let label = if i < 3 { i } else { label };
            seen[label] = true;
            x.push(features);
            y.push(label);
        }
        let _ = seen;
        (x, y)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn binning_respects_order((x, _y) in dataset(60)) {
        let m = BinnedMatrix::from_rows(&x, 16);
        for f in 0..3 {
            let mut order: Vec<usize> = (0..x.len()).collect();
            order.sort_by(|&a, &b| x[a][f].total_cmp(&x[b][f]));
            for w in order.windows(2) {
                prop_assert!(m.code(f, w[0]) <= m.code(f, w[1]));
            }
        }
    }

    #[test]
    fn classifiers_output_distributions((x, y) in dataset(60)) {
        let gbdt = GbdtClassifier::fit(&x, &y, 3, &GbdtConfig { n_rounds: 4, ..Default::default() });
        let rf = RandomForestClassifier::fit(
            &x, &y, 3,
            &RandomForestConfig { n_trees: 4, ..Default::default() },
        );
        let nb = GaussianNb::fit(&x, &y, 3);
        let models: [&dyn Classifier; 3] = [&gbdt, &rf, &nb];
        for m in models {
            for row in x.iter().take(10) {
                let p = m.predict_proba(row);
                prop_assert_eq!(p.len(), 3);
                let total: f64 = p.iter().sum();
                prop_assert!((total - 1.0).abs() < 1e-6);
                prop_assert!(p.iter().all(|&v| v >= -1e-12));
                prop_assert!(m.predict(row) < 3);
            }
        }
    }

    #[test]
    fn split_partitions_exactly((x, y) in dataset(80), frac in 0.1..0.5f64, seed in 0u64..100) {
        let data = TabularData::new(x, y);
        let (train, test) = train_test_split(&data, frac, seed);
        prop_assert_eq!(train.len() + test.len(), data.len());
        let expected_test = (data.len() as f64 * frac).round() as usize;
        prop_assert_eq!(test.len(), expected_test.min(data.len()));
    }
}
